package cache

import (
	"fmt"
	"runtime"
	"runtime/metrics"
	"sync/atomic"
	"testing"
)

// warmKeys is the benchmark working set: enough keys that shards are
// evenly loaded, few enough that everything stays memory-resident.
const warmKeys = 1024

func preloadCache(b *testing.B, shards int) (*Sharded[int], []string) {
	b.Helper()
	s := NewSharded(ShardedOptions[int]{Capacity: warmKeys * 2, Shards: shards})
	keys := make([]string, warmKeys)
	for i := range keys {
		keys[i] = fmt.Sprintf("sim|W%03d|tiny|BASE|baseline|%d", i, i)
		s.Add(keys[i], i)
	}
	return s, keys
}

// benchWarmGet drives 64 logical goroutines of warm GetOrCompute
// traffic over a preloaded cache. Every lookup must be a hit; a single
// compute means the preload or the cache is broken and the numbers are
// garbage, so it fails the benchmark.
func benchWarmGet(b *testing.B, shards int) {
	s, keys := preloadCache(b, shards)
	var computes atomic.Int64
	var goroutineSeq atomic.Int64
	// SetParallelism multiplies GOMAXPROCS: aim for 64 concurrent
	// goroutines regardless of the host's core count, the contention
	// point the acceptance gate is written against.
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((64 + procs - 1) / procs)
	b.ReportAllocs()
	// Wall time under-reports lock contention on hosts with few cores
	// (blocked goroutines overlap the holder's useful work), so also
	// report the runtime's aggregate mutex wait per operation — the
	// number sharding exists to shrink.
	sample := []metrics.Sample{{Name: "/sync/mutex/wait/total:seconds"}}
	metrics.Read(sample)
	waitBefore := sample[0].Value.Float64()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Per-goroutine xorshift over the key space, seeded distinctly so
		// goroutines do not march in lockstep over the same shard.
		r := uint64(goroutineSeq.Add(1))*0x9e3779b97f4a7c15 + 1
		for pb.Next() {
			r ^= r << 13
			r ^= r >> 7
			r ^= r << 17
			k := keys[r%warmKeys]
			if _, _, err := s.GetOrCompute(k, func() (int, error) {
				computes.Add(1)
				return 0, nil
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	metrics.Read(sample)
	b.ReportMetric((sample[0].Value.Float64()-waitBefore)*1e9/float64(b.N), "mutex-wait-ns/op")
	if n := computes.Load(); n != 0 {
		b.Fatalf("%d computes during a warm benchmark — lookups were misses, numbers are invalid", n)
	}
}

// BenchmarkWarmGetParallel is the tentpole's perf gate: warm hits from
// 64 goroutines, sharded (the default shard count) versus a single
// lock. CI runs the sharded variant with GOMAXPROCS=8 and gates on
// ns/op and allocs/op against BENCH_cache.json; the singlelock variant
// exists to measure the speedup ratio, not to gate.
func BenchmarkWarmGetParallel(b *testing.B) {
	b.Run("sharded", func(b *testing.B) { benchWarmGet(b, 0) })
	b.Run("singlelock", func(b *testing.B) { benchWarmGet(b, 1) })
}
