package cache

// Tiered glues the sharded memory front (tier 1) to the disk spill
// store (tier 2). Capacity evictions from memory spill to disk instead
// of being discarded; misses read through to disk and promote back
// into memory under the shard's singleflight, so a burst of lookups
// for a spilled key costs one disk read. Any spill damage — failed
// write, torn file, read error — degrades to a recompute, never an
// error: the disk tier only ever adds warmth.

import "fmt"

// Tier labels where a GetOrCompute hit was served from.
type Tier int

const (
	// TierMiss: the value was computed fresh (not a hit).
	TierMiss Tier = iota
	// TierMem: served by the in-memory sharded LRU (including joining
	// another caller's in-flight computation).
	TierMem
	// TierDisk: read from the spill store and promoted into memory.
	TierDisk
)

func (t Tier) String() string {
	switch t {
	case TierMem:
		return "mem"
	case TierDisk:
		return "disk"
	default:
		return "miss"
	}
}

// TieredOptions configures a Tiered cache.
type TieredOptions[V any] struct {
	// Capacity / Shards / Weigh configure the memory tier (see
	// ShardedOptions).
	Capacity int
	Shards   int
	Weigh    func(V) Weight
	// Encode / Decode serialize values for the spill tier. Both must be
	// set when Disk is; Decode must reject payloads it cannot fully
	// reconstruct.
	Encode func(V) ([]byte, error)
	Decode func([]byte) (V, error)
	// Disk is the spill store. nil means memory-only: evictions
	// discard, and Tiered behaves exactly like Sharded.
	Disk *DiskStore
	// OnHit observes each hit with the tier that served it; OnMiss
	// observes each successful fresh computation. May be nil.
	OnHit  func(Tier)
	OnMiss func()
}

// Tiered is the two-tier content-addressed result store. All methods
// are safe for concurrent use.
type Tiered[V any] struct {
	opt TieredOptions[V]
	mem *Sharded[V]
}

// NewTiered builds a tiered cache over opt.Disk (which the caller
// opens and the Tiered takes ownership of closing).
func NewTiered[V any](opt TieredOptions[V]) (*Tiered[V], error) {
	if opt.Disk != nil && (opt.Encode == nil || opt.Decode == nil) {
		return nil, fmt.Errorf("cache: a disk tier requires Encode and Decode")
	}
	t := &Tiered[V]{opt: opt}
	t.mem = NewSharded(ShardedOptions[V]{
		Capacity: opt.Capacity,
		Shards:   opt.Shards,
		Weigh:    opt.Weigh,
		OnEvict:  t.spill,
	})
	return t, nil
}

// spill is the memory tier's eviction hook: serialize and enqueue the
// entry on the disk write-behind queue. Entries already resident on
// disk (typically promoted-then-evicted ones whose value never
// changed) are skipped — re-spilling identical bytes buys nothing.
func (t *Tiered[V]) spill(key string, val V, w Weight) {
	if t.opt.Disk == nil {
		return
	}
	if t.opt.Disk.Contains(key) {
		return
	}
	payload, err := t.opt.Encode(val)
	if err != nil {
		// Unencodable values silently fall out of the cache, exactly as
		// they would without a spill tier.
		return
	}
	t.opt.Disk.Put(key, payload, w.Cost)
}

// GetOrCompute returns the value for key and the tier that served it:
// TierMem for a memory hit (or a joined in-flight computation),
// TierDisk for a spill hit promoted back into memory, TierMiss for a
// fresh computation. Concurrent callers for one key coalesce in the
// key's shard, so a spilled key is read off disk once per burst.
// Errors are not cached, and panics surface as *PanicError — exactly
// the LRU semantics.
func (t *Tiered[V]) GetOrCompute(key string, fn func() (V, error)) (V, Tier, error) {
	// fromDisk is only written inside the compute closure, which the
	// shard runs at most once per miss (coalesced callers never enter
	// it), and is read only after the shard call returns.
	fromDisk := false
	val, hit, err := t.mem.GetOrCompute(key, func() (V, error) {
		if t.opt.Disk != nil {
			if payload, _, ok := t.opt.Disk.Get(key); ok {
				if v, derr := t.opt.Decode(payload); derr == nil {
					fromDisk = true
					return v, nil
				}
				// Undecodable payload: stale schema or silent damage.
				// Drop it and recompute.
				t.opt.Disk.Remove(key)
			}
		}
		return fn()
	})
	tier := TierMiss
	switch {
	case hit:
		tier = TierMem
	case err == nil && fromDisk:
		tier = TierDisk
	}
	if err == nil {
		if tier == TierMiss {
			if t.opt.OnMiss != nil {
				t.opt.OnMiss()
			}
		} else if t.opt.OnHit != nil {
			t.opt.OnHit(tier)
		}
	}
	return val, tier, err
}

// Add inserts (or refreshes) an entry in the memory tier, exactly like
// Sharded.Add. It does not write to disk; the entry spills if and when
// it is evicted.
func (t *Tiered[V]) Add(key string, val V) { t.mem.Add(key, val) }

// Peek reports the memory-resident value without touching recency,
// observers, or the disk tier.
func (t *Tiered[V]) Peek(key string) (V, bool) { return t.mem.Peek(key) }

// Contains reports whether key is resident in either tier, without
// promotion, recency updates, or disk reads. Admission control uses it
// to price spilled repeat work as near-zero.
func (t *Tiered[V]) Contains(key string) bool {
	if _, ok := t.mem.Peek(key); ok {
		return true
	}
	return t.opt.Disk != nil && t.opt.Disk.Contains(key)
}

// MemLen reports memory-resident entries.
func (t *Tiered[V]) MemLen() int { return t.mem.Len() }

// DiskLen reports landed spill entries (0 without a disk tier).
func (t *Tiered[V]) DiskLen() int {
	if t.opt.Disk == nil {
		return 0
	}
	return t.opt.Disk.Len()
}

// DiskBytes reports landed spill bytes (0 without a disk tier).
func (t *Tiered[V]) DiskBytes() int64 {
	if t.opt.Disk == nil {
		return 0
	}
	return t.opt.Disk.Bytes()
}

// Entries returns the memory tier's resident entries (see
// Sharded.Entries).
func (t *Tiered[V]) Entries() []Entry[V] { return t.mem.Entries() }

// spillAllChunk bounds how many spill writes SpillAll enqueues between
// Flushes, so a shutdown spill of a large cache never overflows the
// write-behind queue (which would silently drop the oldest entries).
const spillAllChunk = 64

// SpillAll writes every memory-resident entry not already on disk to
// the spill tier and waits for them to land. Service shutdown calls it
// so a restart finds the whole working set warm, not just what
// happened to be evicted.
func (t *Tiered[V]) SpillAll() {
	if t.opt.Disk == nil {
		return
	}
	chunk := spillAllChunk
	if q := t.opt.Disk.QueueLen(); q < chunk {
		chunk = q
	}
	n := 0
	for _, e := range t.mem.Entries() {
		if t.opt.Disk.Contains(e.Key) {
			continue
		}
		payload, err := t.opt.Encode(e.Val)
		if err != nil {
			continue
		}
		w := Weight{Cost: 1, Bytes: 1}
		if t.opt.Weigh != nil {
			w = t.opt.Weigh(e.Val)
		}
		t.opt.Disk.Put(e.Key, payload, w.Cost)
		if n++; n%chunk == 0 {
			t.opt.Disk.Flush()
		}
	}
	t.opt.Disk.Flush()
}

// Flush blocks until pending spill writes have landed.
func (t *Tiered[V]) Flush() {
	if t.opt.Disk != nil {
		t.opt.Disk.Flush()
	}
}

// Close drains and stops the disk tier. It does not spill resident
// memory entries — call SpillAll first when warmth should survive the
// restart.
func (t *Tiered[V]) Close() {
	if t.opt.Disk != nil {
		t.opt.Disk.Close()
	}
}
