package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigs(t *testing.T) {
	l1 := L1Config()
	if l1.Sets() != 32 {
		t.Errorf("L1 sets = %d, want 32 (Table I)", l1.Sets())
	}
	llc := LLCSliceConfig()
	if llc.Sets() != 64 {
		t.Errorf("LLC slice sets = %d, want 64 (Table I)", llc.Sets())
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{Name: "line0", SizeBytes: 1024, LineBytes: 0, Ways: 2},
		{Name: "lineNP2", SizeBytes: 1024, LineBytes: 96, Ways: 2},
		{Name: "ways0", SizeBytes: 1024, LineBytes: 64, Ways: 0},
		{Name: "odd", SizeBytes: 1000, LineBytes: 64, Ways: 2},
		{Name: "setsNP2", SizeBytes: 64 * 2 * 3, LineBytes: 64, Ways: 2},
	}
	for _, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: expected error", cfg.Name)
		}
	}
}

func TestHitMiss(t *testing.T) {
	c := MustNew(Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 2})
	if r := c.Access(0x100, false); r.Hit {
		t.Fatal("cold access hit")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Fatal("second access missed")
	}
	if r := c.Access(0x13F, false); !r.Hit {
		t.Fatal("same line different offset missed")
	}
	st := c.Stats()
	if st.Accesses != 3 || st.Hits != 2 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.MissRate() != 1.0/3.0 {
		t.Errorf("miss rate = %v", st.MissRate())
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way, 8 sets of 64B: addresses with the same set index collide.
	c := MustNew(Config{Name: "t", SizeBytes: 1024, LineBytes: 64, Ways: 2})
	a0 := uint64(0x0000) // set 0
	a1 := uint64(0x0400) // set 0 (1024 apart)
	a2 := uint64(0x0800) // set 0
	c.Access(a0, false)
	c.Access(a1, false)
	c.Access(a0, false) // a0 is MRU, a1 LRU
	r := c.Access(a2, false)
	if !r.Eviction || r.Victim != a1 {
		t.Fatalf("expected a1 evicted, got %+v", r)
	}
	if !c.Probe(a0) || c.Probe(a1) || !c.Probe(a2) {
		t.Error("LRU state wrong after eviction")
	}
}

func TestDirtyWriteback(t *testing.T) {
	c := MustNew(Config{Name: "t", SizeBytes: 128, LineBytes: 64, Ways: 1})
	c.Access(0x0000, true) // dirty
	r := c.Access(0x1000, false)
	if !r.Eviction || !r.VictimDirty || r.Victim != 0 {
		t.Fatalf("expected dirty eviction of line 0, got %+v", r)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d", c.Stats().Writebacks)
	}
	// Read-hit then write makes the line dirty.
	c.Access(0x2000, false)
	c.Access(0x2000, true)
	r = c.Access(0x3000, false)
	if !r.VictimDirty {
		t.Error("write-hit did not dirty the line")
	}
}

func TestProbeDoesNotDisturb(t *testing.T) {
	c := MustNew(Config{Name: "t", SizeBytes: 128, LineBytes: 64, Ways: 1})
	c.Access(0x40, false)
	before := c.Stats()
	if !c.Probe(0x40) || c.Probe(0x4000) {
		t.Error("probe wrong")
	}
	if c.Stats() != before {
		t.Error("probe changed stats")
	}
}

func TestInvalidate(t *testing.T) {
	c := MustNew(Config{Name: "t", SizeBytes: 256, LineBytes: 64, Ways: 2})
	c.Access(0x40, true)
	if p, d := c.Invalidate(0x40); !p || !d {
		t.Errorf("invalidate = (%v,%v), want dirty present", p, d)
	}
	if c.Probe(0x40) {
		t.Error("line still present")
	}
	if p, _ := c.Invalidate(0x40); p {
		t.Error("double invalidate reported present")
	}
}

// Property: a cache never holds more distinct lines than its capacity,
// and hits+misses == accesses.
func TestCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := Config{Name: "p", SizeBytes: 2048, LineBytes: 64, Ways: 4}
		c := MustNew(cfg)
		resident := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			addr := uint64(rng.Intn(1 << 14))
			r := c.Access(addr, rng.Intn(2) == 0)
			line := addr &^ 63
			if r.Eviction {
				delete(resident, r.Victim)
			}
			resident[line] = true
			if len(resident) > cfg.SizeBytes/cfg.LineBytes {
				return false
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: after Access(addr), Probe(addr) is always true (write
// allocate installs immediately).
func TestWriteAllocateProperty(t *testing.T) {
	c := MustNew(L1Config())
	f := func(a uint32, w bool) bool {
		addr := uint64(a)
		c.Access(addr, w)
		return c.Probe(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestVictimReconstruction(t *testing.T) {
	c := MustNew(L1Config()) // 32 sets x 128B
	addr := uint64(0x12345680)
	c.Access(addr, false)
	// Evict by filling the set with 4 more distinct tags.
	setStride := uint64(32 * 128)
	var victims []uint64
	for i := 1; i <= 4; i++ {
		r := c.Access(addr+setStride*uint64(i), false)
		if r.Eviction {
			victims = append(victims, r.Victim)
		}
	}
	if len(victims) != 1 || victims[0] != addr&^127 {
		t.Errorf("victims = %#x, want [%#x]", victims, addr&^127)
	}
}

func TestMSHRMergeAndLimit(t *testing.T) {
	m := NewMSHRFile(2)
	if !m.CanAccept(0x100) {
		t.Fatal("empty file refused")
	}
	if !m.Add(0x100) {
		t.Fatal("first miss not primary")
	}
	if m.Add(0x100) {
		t.Fatal("merge reported primary")
	}
	m.Add(0x200)
	if m.CanAccept(0x300) {
		t.Error("full file accepted a new line")
	}
	if !m.CanAccept(0x200) {
		t.Error("full file refused a merge")
	}
	if !m.Full() || m.Len() != 2 {
		t.Errorf("Full=%v Len=%d", m.Full(), m.Len())
	}
	if n := m.Complete(0x100); n != 2 {
		t.Errorf("waiters = %d, want 2", n)
	}
	if m.Pending(0x100) {
		t.Error("completed line still pending")
	}
	if n := m.Complete(0x999); n != 0 {
		t.Errorf("unknown complete = %d", n)
	}
	if !m.CanAccept(0x300) {
		t.Error("freed entry not reusable")
	}
}

func TestMSHRUnlimited(t *testing.T) {
	m := NewMSHRFile(0)
	for i := 0; i < 1000; i++ {
		if !m.CanAccept(uint64(i * 64)) {
			t.Fatal("unlimited file refused")
		}
		m.Add(uint64(i * 64))
	}
	if m.Full() {
		t.Error("unlimited file reports full")
	}
}

func TestMSHROverflowPanics(t *testing.T) {
	m := NewMSHRFile(1)
	m.Add(0x100)
	defer func() {
		if recover() == nil {
			t.Error("expected panic on overflow Add")
		}
	}()
	m.Add(0x200)
}
