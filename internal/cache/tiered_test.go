package cache

import (
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

type tierCell struct {
	N int `json:"n"`
}

func newTestTiered(t *testing.T, capacity, shards int, disk *DiskStore) *Tiered[tierCell] {
	t.Helper()
	tc, err := NewTiered(TieredOptions[tierCell]{
		Capacity: capacity,
		Shards:   shards,
		Weigh:    func(c tierCell) Weight { return Weight{Cost: float64(c.N), Bytes: 16} },
		Encode:   func(c tierCell) ([]byte, error) { return json.Marshal(c) },
		Decode: func(b []byte) (tierCell, error) {
			var c tierCell
			err := json.Unmarshal(b, &c)
			return c, err
		},
		Disk: disk,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tc.Close)
	return tc
}

// TestTieredEvictSpillPromote is the tier-transition round trip: an
// entry evicted from memory spills to disk, a later lookup reads it
// back (TierDisk) and promotes it, and the lookup after that is a
// memory hit (TierMem) — all without ever recomputing.
func TestTieredEvictSpillPromote(t *testing.T) {
	disk := openTestDisk(t, DiskOptions{})
	tc := newTestTiered(t, 1, 1, disk) // capacity 1: the second insert evicts the first

	computes := 0
	get := func(key string, n int) (tierCell, Tier) {
		t.Helper()
		v, tier, err := tc.GetOrCompute(key, func() (tierCell, error) {
			computes++
			return tierCell{N: n}, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v, tier
	}

	if _, tier := get("a", 1); tier != TierMiss {
		t.Fatalf("first lookup of a: tier %v, want miss", tier)
	}
	if _, tier := get("b", 2); tier != TierMiss {
		t.Fatalf("first lookup of b: tier %v, want miss", tier)
	}
	tc.Flush() // a's spill has landed
	if _, ok := tc.Peek("a"); ok {
		t.Fatal("a still memory-resident at capacity 1")
	}
	if !disk.Contains("a") {
		t.Fatal("evicted entry a never spilled")
	}

	v, tier := get("a", 999) // 999 would betray a recompute
	if tier != TierDisk || v.N != 1 {
		t.Fatalf("spilled lookup of a = (%+v, %v), want ({1}, disk)", v, tier)
	}
	if _, ok := tc.Peek("a"); !ok {
		t.Fatal("disk hit did not promote a into memory")
	}
	if v, tier := get("a", 999); tier != TierMem || v.N != 1 {
		t.Fatalf("promoted lookup of a = (%+v, %v), want ({1}, mem)", v, tier)
	}
	if computes != 2 {
		t.Errorf("%d computations, want 2 (a and b once each)", computes)
	}
}

// TestTieredTierString pins the metric label values.
func TestTieredTierString(t *testing.T) {
	for tier, want := range map[Tier]string{TierMiss: "miss", TierMem: "mem", TierDisk: "disk"} {
		if got := tier.String(); got != want {
			t.Errorf("Tier(%d).String() = %q, want %q", tier, got, want)
		}
	}
}

// TestTieredObservers: OnHit carries the serving tier, OnMiss fires on
// fresh computation, and neither fires on error.
func TestTieredObservers(t *testing.T) {
	var memHits, diskHits, misses atomic.Int64
	disk := openTestDisk(t, DiskOptions{})
	tc, err := NewTiered(TieredOptions[tierCell]{
		Capacity: 1, Shards: 1,
		Encode: func(c tierCell) ([]byte, error) { return json.Marshal(c) },
		Decode: func(b []byte) (tierCell, error) { var c tierCell; return c, json.Unmarshal(b, &c) },
		Disk:   disk,
		OnHit: func(tier Tier) {
			if tier == TierDisk {
				diskHits.Add(1)
			} else {
				memHits.Add(1)
			}
		},
		OnMiss: func() { misses.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tc.Close()

	tc.GetOrCompute("a", func() (tierCell, error) { return tierCell{N: 1}, nil }) // miss
	tc.GetOrCompute("a", func() (tierCell, error) { return tierCell{N: 1}, nil }) // mem hit
	tc.GetOrCompute("b", func() (tierCell, error) { return tierCell{N: 2}, nil }) // miss, evicts a
	tc.Flush()
	tc.GetOrCompute("a", func() (tierCell, error) { return tierCell{N: 1}, nil }) // disk hit
	tc.GetOrCompute("c", func() (tierCell, error) { return tierCell{}, errors.New("nope") })

	if m, d, mi := memHits.Load(), diskHits.Load(), misses.Load(); m != 1 || d != 1 || mi != 2 {
		t.Errorf("memHits=%d diskHits=%d misses=%d, want 1/1/2 (errors observe nothing)", m, d, mi)
	}
}

// TestTieredContainsBothTiers: Contains sees memory and disk residency
// without promoting — the admission-control probe contract.
func TestTieredContainsBothTiers(t *testing.T) {
	disk := openTestDisk(t, DiskOptions{})
	tc := newTestTiered(t, 1, 1, disk)
	tc.Add("a", tierCell{N: 1})
	tc.Add("b", tierCell{N: 2}) // evicts and spills a
	tc.Flush()

	if !tc.Contains("a") {
		t.Error("Contains(a) false for a spilled entry")
	}
	if !tc.Contains("b") {
		t.Error("Contains(b) false for a memory-resident entry")
	}
	if tc.Contains("c") {
		t.Error("Contains(c) true for an absent key")
	}
	if _, ok := tc.Peek("a"); ok {
		t.Error("Contains promoted a into memory")
	}
}

// TestTieredUndecodablePayloadRecomputes: a spill entry whose payload
// no longer decodes (schema drift, silent damage below the checksum's
// radar) is dropped and recomputed, not served or crashed on.
func TestTieredUndecodablePayloadRecomputes(t *testing.T) {
	disk := openTestDisk(t, DiskOptions{})
	disk.Put("a", []byte("not json"), 1)
	disk.Flush()

	tc := newTestTiered(t, 4, 1, disk)
	v, tier, err := tc.GetOrCompute("a", func() (tierCell, error) { return tierCell{N: 7}, nil })
	if err != nil || v.N != 7 || tier != TierMiss {
		t.Fatalf("GetOrCompute over garbage payload = (%+v, %v, %v), want ({7}, miss, nil)", v, tier, err)
	}
	if disk.Contains("a") {
		t.Error("undecodable spill entry not dropped")
	}
}

// TestTieredMemoryOnly: without a disk tier, Tiered behaves exactly
// like Sharded — evictions discard, SpillAll/Flush/Close are no-ops.
func TestTieredMemoryOnly(t *testing.T) {
	tc, err := NewTiered(TieredOptions[tierCell]{Capacity: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	tc.Add("a", tierCell{N: 1})
	tc.Add("b", tierCell{N: 2})
	if tc.Contains("a") {
		t.Error("evicted entry resident with no disk tier")
	}
	if n := tc.DiskLen(); n != 0 {
		t.Errorf("DiskLen = %d without a disk", n)
	}
	tc.SpillAll()
	tc.Flush()
	tc.Close()
	v, tier, err := tc.GetOrCompute("a", func() (tierCell, error) { return tierCell{N: 9}, nil })
	if err != nil || tier != TierMiss || v.N != 9 {
		t.Errorf("memory-only recompute = (%+v, %v, %v)", v, tier, err)
	}
}

// TestTieredRequiresCodec: a disk tier without Encode/Decode is a
// constructor error, not a latent panic.
func TestTieredRequiresCodec(t *testing.T) {
	disk := openTestDisk(t, DiskOptions{})
	if _, err := NewTiered(TieredOptions[tierCell]{Capacity: 1, Disk: disk}); err == nil {
		t.Fatal("NewTiered accepted a disk tier with no codec")
	}
}

// TestTieredSpillAll: every memory-resident entry lands on disk, in
// bounded chunks, and a second store over the same directory serves
// them all — the shutdown/restart warmth contract.
func TestTieredSpillAll(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "spill")
	disk, err := OpenDisk(DiskOptions{Dir: dir, QueueLen: 4}) // queue smaller than the working set
	if err != nil {
		t.Fatal(err)
	}
	tc := newTestTiered(t, 64, 4, disk)
	const n = 20
	for i := 0; i < n; i++ {
		tc.Add(fmt.Sprintf("k%d", i), tierCell{N: i + 1})
	}
	tc.SpillAll()
	tc.Close()
	if got := disk.Len(); got != n {
		t.Fatalf("SpillAll landed %d of %d entries (chunking must out-pace the %d-deep queue)", got, n, 4)
	}

	disk2 := openTestDisk(t, DiskOptions{Dir: dir})
	tc2 := newTestTiered(t, 64, 4, disk2)
	for i := 0; i < n; i++ {
		v, tier, err := tc2.GetOrCompute(fmt.Sprintf("k%d", i), func() (tierCell, error) {
			return tierCell{N: -1}, nil
		})
		if err != nil || tier != TierDisk || v.N != i+1 {
			t.Fatalf("k%d after restart = (%+v, %v, %v), want ({%d}, disk, nil)", i, v, tier, err, i+1)
		}
	}
}

// TestTieredCoalescedDiskRead: a burst of lookups for one spilled key
// costs a single disk read; joiners see a hit.
func TestTieredCoalescedDiskRead(t *testing.T) {
	disk := openTestDisk(t, DiskOptions{})
	tc := newTestTiered(t, 8, 1, disk)
	tc.Add("cold", tierCell{N: 5})
	// Evict it by filling the single shard past capacity.
	for i := 0; i < 16; i++ {
		tc.Add(fmt.Sprintf("filler%d", i), tierCell{N: i})
	}
	tc.Flush()
	if _, ok := tc.Peek("cold"); ok {
		t.Skip("cold not evicted; capacity split kept it resident")
	}

	var computes, diskTiers atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, tier, err := tc.GetOrCompute("cold", func() (tierCell, error) {
				computes.Add(1)
				return tierCell{N: -1}, nil
			})
			if err != nil || v.N != 5 {
				t.Errorf("burst lookup = (%+v, %v)", v, err)
			}
			if tier == TierDisk {
				diskTiers.Add(1)
			}
		}()
	}
	wg.Wait()
	if computes.Load() != 0 {
		t.Errorf("%d recomputes of a spilled key", computes.Load())
	}
	if diskTiers.Load() < 1 {
		t.Error("no caller observed the disk tier")
	}
}

// TestTieredConcurrentPromoteEvictStorm is the -race workout across
// both tiers: a working set larger than memory churns entries through
// evict → spill → promote cycles while values stay key-determined, so
// any cross-tier corruption shows up as a wrong value.
func TestTieredConcurrentPromoteEvictStorm(t *testing.T) {
	disk := openTestDisk(t, DiskOptions{QueueLen: 16, MaxBytes: 1 << 20})
	tc := newTestTiered(t, 8, 2, disk) // tiny memory: constant eviction traffic
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			r := uint64(seed)*0x9e3779b9 + 1
			for i := 0; i < 400; i++ {
				r ^= r << 13
				r ^= r >> 7
				r ^= r << 17
				id := int(r % 64)
				key := fmt.Sprintf("cell-%d", id)
				want := id*100 + 1 // pure function of the key
				v, _, err := tc.GetOrCompute(key, func() (tierCell, error) {
					return tierCell{N: want}, nil
				})
				if err != nil {
					t.Errorf("storm lookup %s: %v", key, err)
				} else if v.N != want {
					t.Errorf("storm lookup %s = %d, want %d (cross-tier corruption)", key, v.N, want)
				}
			}
		}(g)
	}
	wg.Wait()
}
