package cache

// Generic service-level LRU. Besides the hardware models above, this
// package hosts LRU[V]: the content-addressed result cache behind
// valleyd's profile and simulation caches. It grew out of
// internal/service and moved here so its eviction policy and snapshot
// hooks are reusable (and testable) independent of the service's HTTP
// machinery.

import (
	"container/list"
	"fmt"
	"runtime/debug"
	"sync"
)

// PanicError is the error GetOrCompute returns when the computation
// panicked. It preserves the panic value and the stack captured at the
// panic site, so callers can account for it as a crash (and log the
// real stack) rather than an ordinary compute failure.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("cache: computation panicked: %v", e.Value)
}

// Weight is the eviction weight of one cache entry: Cost is how
// expensive the entry was to produce (the service uses measured wall
// seconds), Bytes its approximate resident size. Eviction prefers the
// lowest Cost/Bytes density — the cheapest-to-recompute bytes go first.
type Weight struct {
	Cost  float64
	Bytes int
}

// evictScan bounds the eviction victim search: only the evictScan
// least-recently-used entries are candidates, so one eviction is O(1)-ish
// while still letting an order-of-magnitude-more-expensive entry at the
// cold tail outlive cheap neighbours. Recency stays the first-order
// signal; cost breaks ties inside the cold tail.
const evictScan = 16

// LRUOptions configures an LRU.
type LRUOptions[V any] struct {
	// Capacity bounds resident entries (values < 1 become 1).
	Capacity int
	// OnHit / OnMiss observe lookup outcomes (may be nil).
	OnHit, OnMiss func()
	// Weigh returns an entry's eviction weight, sampled once at insert.
	// nil means every entry weighs the same, which makes eviction exact
	// LRU (the profile cache's policy).
	Weigh func(V) Weight
	// OnEvict observes capacity evictions (may be nil). It runs on the
	// inserting goroutine after the cache lock is released, so it may
	// take locks of its own (the spill tier enqueues a write-behind
	// here) but must not call back into this cache.
	OnEvict func(key string, val V, w Weight)
}

// LRU is a content-addressed LRU cache with in-flight request
// coalescing: concurrent lookups for the same key share one computation
// (the first caller computes, the rest block on it and count as hits),
// so a burst of identical requests costs one computation. Keys encode
// the input identity plus every option that affects the result. With a
// Weigh function, eviction is cost-aware: among the least-recently-used
// entries, the cheapest cost-per-byte is evicted first.
type LRU[V any] struct {
	mu       sync.Mutex
	opt      LRUOptions[V]
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*flight[V]
}

type lruEntry[V any] struct {
	key string
	val V
	w   Weight
}

type flight[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewLRU builds an empty cache.
func NewLRU[V any](opt LRUOptions[V]) *LRU[V] {
	if opt.Capacity < 1 {
		opt.Capacity = 1
	}
	return &LRU[V]{
		opt:      opt,
		ll:       list.New(),
		items:    map[string]*list.Element{},
		inflight: map[string]*flight[V]{},
	}
}

// Len returns the number of resident entries.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// GetOrCompute returns the cached value for key, or runs fn once to
// produce it. hit is true when the value came from the cache or from
// joining another caller's in-flight computation. Errors are not cached.
func (c *LRU[V]) GetOrCompute(key string, fn func() (V, error)) (val V, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		v := el.Value.(*lruEntry[V]).val
		c.mu.Unlock()
		if c.opt.OnHit != nil {
			c.opt.OnHit()
		}
		return v, true, nil
	}
	if f, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			var zero V
			return zero, false, f.err
		}
		if c.opt.OnHit != nil {
			c.opt.OnHit()
		}
		return f.val, true, nil
	}
	f := &flight[V]{done: make(chan struct{})}
	c.inflight[key] = f
	c.mu.Unlock()

	// A panicking computation must still unregister the flight and close
	// done, or every later lookup of this key would block forever.
	func() {
		defer func() {
			if r := recover(); r != nil {
				f.err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		f.val, f.err = fn()
	}()

	c.mu.Lock()
	delete(c.inflight, key)
	var evicted []lruEntry[V]
	if f.err == nil {
		evicted = c.insertLocked(key, f.val)
	}
	c.mu.Unlock()
	close(f.done)
	c.notifyEvicted(evicted)

	// A failed computation was never cacheable; counting it as a miss
	// would make client errors read as cache-sizing trouble in /metrics.
	if f.err == nil && c.opt.OnMiss != nil {
		c.opt.OnMiss()
	}
	return f.val, false, f.err
}

// Add inserts (or refreshes) an entry without a computation, making it
// the most recently used. Snapshot loaders use it to rehydrate a cache.
func (c *LRU[V]) Add(key string, val V) {
	c.mu.Lock()
	evicted := c.insertLocked(key, val)
	c.mu.Unlock()
	c.notifyEvicted(evicted)
}

// notifyEvicted delivers eviction callbacks outside the cache lock.
func (c *LRU[V]) notifyEvicted(evicted []lruEntry[V]) {
	if c.opt.OnEvict == nil {
		return
	}
	for i := range evicted {
		c.opt.OnEvict(evicted[i].key, evicted[i].val, evicted[i].w)
	}
}

// Peek reports the resident value for key without touching recency or
// the hit/miss observers.
func (c *LRU[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruEntry[V]).val, true
	}
	var zero V
	return zero, false
}

// Entry is one resident (key, value) pair, exported for snapshots.
type Entry[V any] struct {
	Key string
	Val V
}

// Entries returns the resident entries in eviction order — least
// recently used first — so feeding them back through Add in order
// reconstructs both contents and recency.
func (c *LRU[V]) Entries() []Entry[V] {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Entry[V], 0, c.ll.Len())
	for el := c.ll.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*lruEntry[V])
		out = append(out, Entry[V]{Key: e.key, Val: e.val})
	}
	return out
}

// insertLocked installs (or refreshes) an entry and returns the entries
// evicted to make room, for the caller to report once the lock is
// dropped.
func (c *LRU[V]) insertLocked(key string, val V) []lruEntry[V] {
	w := Weight{Cost: 1, Bytes: 1}
	if c.opt.Weigh != nil {
		w = c.opt.Weigh(val)
		if w.Bytes < 1 {
			w.Bytes = 1
		}
		if w.Cost < 0 {
			w.Cost = 0
		}
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry[V])
		e.val = val
		e.w = w
		c.ll.MoveToFront(el)
		return nil
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: val, w: w})
	var evicted []lruEntry[V]
	for c.ll.Len() > c.opt.Capacity {
		if e, ok := c.evictLocked(); ok {
			evicted = append(evicted, e)
		}
	}
	return evicted
}

// evictLocked removes one entry: among the evictScan least-recently-used
// entries, the one with the lowest cost density (Cost/Bytes). Strict
// comparison means uniform weights always evict the list tail — exact
// LRU — and ties among weighted entries favor the colder entry. The
// front element is never a candidate: at eviction time it is the entry
// whose insert triggered the eviction, and letting a cheap newcomer
// evict itself would keep it from ever becoming resident (every repeat
// lookup would recompute it).
func (c *LRU[V]) evictLocked() (lruEntry[V], bool) {
	victim := c.ll.Back()
	if victim == nil {
		return lruEntry[V]{}, false
	}
	density := func(el *list.Element) float64 {
		e := el.Value.(*lruEntry[V])
		return e.w.Cost / float64(e.w.Bytes)
	}
	scan := evictScan
	if max := c.ll.Len() - 1; max < scan {
		scan = max
	}
	best := density(victim)
	for el, n := victim.Prev(), 1; el != nil && n < scan; el, n = el.Prev(), n+1 {
		if d := density(el); d < best {
			victim, best = el, d
		}
	}
	e := victim.Value.(*lruEntry[V])
	c.ll.Remove(victim)
	delete(c.items, e.key)
	return *e, true
}
