// Package metrics collects the memory-hierarchy statistics the paper
// reports in Section VI: memory-level parallelism at the LLC, channel and
// bank levels (Figure 14), defined as the time-weighted number of
// outstanding requests conditioned on at least one being outstanding,
// with bank-level parallelism quantified per channel.
package metrics

import (
	"valleymap/internal/sim"
)

// BusyCounter tracks how many of a set of units have at least one
// outstanding request, integrating the busy-unit count over time while it
// is nonzero. This is exactly the Figure 14 parallelism metric when units
// are LLC slices or DRAM channels.
type BusyCounter struct {
	perUnit []int
	busy    sim.Integrator
}

// NewBusyCounter makes a counter over n units.
func NewBusyCounter(n int) *BusyCounter {
	return &BusyCounter{perUnit: make([]int, n)}
}

// Inc registers one more outstanding request at a unit.
func (b *BusyCounter) Inc(now sim.Time, unit int) {
	b.perUnit[unit]++
	if b.perUnit[unit] == 1 {
		b.busy.Inc(now)
	}
}

// Dec retires one outstanding request at a unit.
func (b *BusyCounter) Dec(now sim.Time, unit int) {
	if b.perUnit[unit] <= 0 {
		panic("metrics: busy counter underflow")
	}
	b.perUnit[unit]--
	if b.perUnit[unit] == 0 {
		b.busy.Dec(now)
	}
}

// Finish closes the integration window.
func (b *BusyCounter) Finish(now sim.Time) { b.busy.Finish(now) }

// Parallelism returns the mean number of busy units while any unit is
// busy (Section VI-B's metric).
func (b *BusyCounter) Parallelism() float64 { return b.busy.MeanWhileBusy() }

// Outstanding returns the current total outstanding count (diagnostic).
func (b *BusyCounter) Outstanding() int {
	n := 0
	for _, v := range b.perUnit {
		n += v
	}
	return n
}

// MemParallelism aggregates the three Figure 14 metrics. It implements
// dram.ParallelismProbe for the channel and bank levels; the LLC level is
// fed by the LLC model.
type MemParallelism struct {
	llc      *BusyCounter
	channels *BusyCounter
	banks    *BusyCounter // indexed channel*banksPerChannel+bank
	perChan  int
}

// NewMemParallelism sizes counters for the given geometry.
func NewMemParallelism(llcSlices, channels, banksPerChannel int) *MemParallelism {
	return &MemParallelism{
		llc:      NewBusyCounter(llcSlices),
		channels: NewBusyCounter(channels),
		banks:    NewBusyCounter(channels * banksPerChannel),
		perChan:  banksPerChannel,
	}
}

// LLCDelta adjusts the outstanding count of one LLC slice.
func (m *MemParallelism) LLCDelta(now sim.Time, slice, delta int) {
	if delta > 0 {
		m.llc.Inc(now, slice)
	} else {
		m.llc.Dec(now, slice)
	}
}

// ChannelDelta implements dram.ParallelismProbe.
func (m *MemParallelism) ChannelDelta(now sim.Time, channel int, delta int) {
	if delta > 0 {
		m.channels.Inc(now, channel)
	} else {
		m.channels.Dec(now, channel)
	}
}

// BankDelta implements dram.ParallelismProbe.
func (m *MemParallelism) BankDelta(now sim.Time, channel, bank int, delta int) {
	idx := channel*m.perChan + bank
	if delta > 0 {
		m.banks.Inc(now, idx)
	} else {
		m.banks.Dec(now, idx)
	}
}

// Finish closes all integration windows at the end of simulation.
func (m *MemParallelism) Finish(now sim.Time) {
	m.llc.Finish(now)
	m.channels.Finish(now)
	m.banks.Finish(now)
}

// LLCLevel returns Figure 14a: mean busy LLC slices while any is busy.
func (m *MemParallelism) LLCLevel() float64 { return m.llc.Parallelism() }

// ChannelLevel returns Figure 14b: mean busy channels while any is busy.
func (m *MemParallelism) ChannelLevel() float64 { return m.channels.Parallelism() }

// BankLevel returns Figure 14c: mean busy banks per busy channel — the
// paper quantifies bank-level parallelism per channel, giving the
// multiplier effect it describes (total outstanding ≈ channel-level ×
// bank-level).
func (m *MemParallelism) BankLevel() float64 {
	ch := m.channels.Parallelism()
	if ch == 0 {
		return 0
	}
	return m.banks.Parallelism() / ch
}
