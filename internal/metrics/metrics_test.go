package metrics

import (
	"math/rand"
	"testing"

	"valleymap/internal/sim"
)

func TestBusyCounterBasics(t *testing.T) {
	b := NewBusyCounter(4)
	b.Inc(0, 0)
	b.Inc(10, 1) // two units busy over [10,20)
	b.Dec(20, 0)
	b.Dec(30, 1) // one unit busy over [20,30)
	b.Finish(40)
	// busy units: [0,10): 1, [10,20): 2, [20,30): 1, [30,40): 0
	want := (10.0 + 20 + 10) / 30.0
	if got := b.Parallelism(); got != want {
		t.Errorf("parallelism = %v, want %v", got, want)
	}
}

func TestBusyCounterMultipleRequestsOneUnit(t *testing.T) {
	b := NewBusyCounter(2)
	// Three requests on one unit still count it busy once.
	b.Inc(0, 0)
	b.Inc(0, 0)
	b.Inc(0, 0)
	b.Dec(10, 0)
	b.Dec(10, 0)
	if b.Outstanding() != 1 {
		t.Errorf("outstanding = %d", b.Outstanding())
	}
	b.Dec(20, 0)
	b.Finish(20)
	if got := b.Parallelism(); got != 1 {
		t.Errorf("parallelism = %v, want 1 (unit-level, not request-level)", got)
	}
}

func TestBusyCounterUnderflowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewBusyCounter(1).Dec(0, 0)
}

func TestMemParallelismLevels(t *testing.T) {
	m := NewMemParallelism(8, 4, 16)
	// Two channels busy, each with two busy banks, over [0,100).
	for ch := 0; ch < 2; ch++ {
		for bk := 0; bk < 2; bk++ {
			m.ChannelDelta(0, ch, +1)
			m.BankDelta(0, ch, bk, +1)
		}
	}
	for ch := 0; ch < 2; ch++ {
		for bk := 0; bk < 2; bk++ {
			m.ChannelDelta(100, ch, -1)
			m.BankDelta(100, ch, bk, -1)
		}
	}
	m.LLCDelta(0, 3, +1)
	m.LLCDelta(50, 3, -1)
	m.Finish(100)
	if got := m.ChannelLevel(); got != 2 {
		t.Errorf("channel level = %v, want 2", got)
	}
	// 4 busy banks over 2 busy channels = 2 banks per channel.
	if got := m.BankLevel(); got != 2 {
		t.Errorf("bank level = %v, want 2", got)
	}
	if got := m.LLCLevel(); got != 1 {
		t.Errorf("LLC level = %v, want 1", got)
	}
}

func TestBankLevelZeroWhenIdle(t *testing.T) {
	m := NewMemParallelism(8, 4, 16)
	m.Finish(100)
	if m.BankLevel() != 0 || m.ChannelLevel() != 0 || m.LLCLevel() != 0 {
		t.Error("idle system should report zero parallelism")
	}
}

// The multiplier effect of Section VI-B: total outstanding ≈ channel-level
// × bank-level when load is uniform.
func TestMultiplierEffect(t *testing.T) {
	m := NewMemParallelism(8, 4, 16)
	// All 4 channels busy with 8 banks each over [0,1000).
	for ch := 0; ch < 4; ch++ {
		for bk := 0; bk < 8; bk++ {
			m.ChannelDelta(0, ch, +1)
			m.BankDelta(0, ch, bk, +1)
		}
	}
	for ch := 0; ch < 4; ch++ {
		for bk := 0; bk < 8; bk++ {
			m.ChannelDelta(1000, ch, -1)
			m.BankDelta(1000, ch, bk, -1)
		}
	}
	m.Finish(1000)
	if got := m.ChannelLevel() * m.BankLevel(); got != 32 {
		t.Errorf("channel x bank = %v, want 32 total busy banks", got)
	}
}

// Property: random balanced inc/dec sequences never leave residue and
// parallelism stays within [0, units].
func TestBusyCounterProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		units := 1 + rng.Intn(8)
		b := NewBusyCounter(units)
		type ev struct {
			unit int
		}
		var open []ev
		now := sim.Time(0)
		for i := 0; i < 200; i++ {
			now += sim.Time(rng.Intn(10))
			if len(open) > 0 && rng.Intn(2) == 0 {
				k := rng.Intn(len(open))
				b.Dec(now, open[k].unit)
				open = append(open[:k], open[k+1:]...)
			} else {
				u := rng.Intn(units)
				b.Inc(now, u)
				open = append(open, ev{u})
			}
		}
		for _, e := range open {
			now += 1
			b.Dec(now, e.unit)
		}
		b.Finish(now)
		p := b.Parallelism()
		if p < 0 || p > float64(units) {
			t.Fatalf("parallelism %v outside [0,%d]", p, units)
		}
		if b.Outstanding() != 0 {
			t.Fatal("residual outstanding")
		}
	}
}
