#!/usr/bin/env bash
# Compose smoke test: build the image, stand up the docker-compose.yml
# cluster (1 coordinator + 2 workers), run the same 4x4 sweep twice,
# and require
#   - both sweeps to land on status done,
#   - the repeat sweep to be served entirely cached:true (every cell
#     from the worker whose cache owns it — the coordinator never
#     caches remote results, so this proves affinity routing), and
#   - the dispatch accounting to show cells on >= 2 distinct peers.
#
# Needs: docker compose, curl, jq. Cleans the stack up on exit.
set -euo pipefail
cd "$(dirname "$0")/.."

BASE=${BASE:-http://localhost:8080}
SWEEP='{"workloads":["MT","LU","SC","SP"],"schemes":["BASE","RMP","PAE","FAE"],"scale":"tiny"}'

cleanup() {
    docker compose down -v --remove-orphans >/dev/null 2>&1 || true
}
trap cleanup EXIT

docker compose up --build -d

# The coordinator only starts after both workers pass their health
# checks, but its own listener still needs a moment.
for i in $(seq 1 60); do
    if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" -eq 60 ]; then
        echo "coordinator never became healthy" >&2
        docker compose logs >&2
        exit 1
    fi
    sleep 1
done

# run_sweep POSTs the sweep, polls the job to a terminal state, and
# prints the job id; any terminal other than done fails the script.
run_sweep() {
    local id status
    id=$(curl -fsS -X POST -H 'Content-Type: application/json' \
        -d "$SWEEP" "$BASE/v1/simulate" | jq -r .id)
    if [ -z "$id" ] || [ "$id" = null ]; then
        echo "sweep was not accepted" >&2
        return 1
    fi
    for _ in $(seq 1 180); do
        status=$(curl -fsS "$BASE/v1/jobs/$id" | jq -r .status)
        case "$status" in
        done)
            echo "$id"
            return 0
            ;;
        failed | canceled)
            echo "sweep $id ended $status:" >&2
            curl -fsS "$BASE/v1/jobs/$id" | jq . >&2
            return 1
            ;;
        esac
        sleep 1
    done
    echo "sweep $id never reached a terminal state" >&2
    return 1
}

id1=$(run_sweep)
echo "first sweep $id1 done"
id2=$(run_sweep)
echo "repeat sweep $id2 done"

uncached=$(curl -fsS "$BASE/v1/jobs/$id2" |
    jq '[.result.cells[] | select(.cached != true)] | length')
if [ "$uncached" != 0 ]; then
    echo "repeat sweep recomputed $uncached cells instead of hitting the workers' caches:" >&2
    curl -fsS "$BASE/v1/jobs/$id2" | jq '.result.cells' >&2
    exit 1
fi

peers=$(curl -fsS "$BASE/metrics" |
    grep -c '^valleyd_cluster_cells_dispatched_total{' || true)
if [ "$peers" -lt 2 ]; then
    echo "dispatch metrics show $peers peers, want >= 2:" >&2
    curl -fsS "$BASE/metrics" | grep '^valleyd_cluster' >&2 || true
    exit 1
fi

echo "compose smoke OK: repeat sweep fully cached, cells dispatched to $peers peers"
