package valleymap_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"valleymap"
)

func TestFacadeEndToEnd(t *testing.T) {
	spec, ok := valleymap.WorkloadByAbbr("MT")
	if !ok {
		t.Fatal("MT missing")
	}
	app := spec.Build(valleymap.ScaleTiny)
	prof := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{})
	if !prof.HasValley([]int{8, 9, 10, 11, 12, 13}, 0.35, 0.6) {
		t.Error("MT should show its valley through the facade")
	}
	base := valleymap.Simulate(app, valleymap.NewMapper(valleymap.BASE, valleymap.HynixGDDR5(), 1), valleymap.BaselineConfig())
	pae := valleymap.Simulate(app, valleymap.NewMapper(valleymap.PAE, valleymap.HynixGDDR5(), 1), valleymap.BaselineConfig())
	if float64(base.ExecTime)/float64(pae.ExecTime) < 1.5 {
		t.Errorf("facade PAE speedup = %.2f", float64(base.ExecTime)/float64(pae.ExecTime))
	}
}

func TestFacadePostMappingProfile(t *testing.T) {
	spec, _ := valleymap.WorkloadByAbbr("MT")
	app := spec.Build(valleymap.ScaleTiny)
	m := valleymap.NewMapper(valleymap.PAE, valleymap.HynixGDDR5(), 1)
	prof := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{Transform: m.Map})
	if prof.Min([]int{8, 9, 10, 11, 12, 13}) < 0.6 {
		t.Errorf("PAE-mapped profile still has a valley: %.2f",
			prof.Min([]int{8, 9, 10, 11, 12, 13}))
	}
}

func TestFacadeWorkloadSets(t *testing.T) {
	if len(valleymap.Workloads()) != 16 ||
		len(valleymap.AllWorkloads()) != 18 ||
		len(valleymap.ValleyWorkloads()) != 10 ||
		len(valleymap.NonValleyWorkloads()) != 6 {
		t.Error("workload set sizes wrong")
	}
}

func TestFacadeRenderers(t *testing.T) {
	var b bytes.Buffer
	opt := valleymap.ExperimentOptions{Scale: valleymap.ScaleTiny}
	valleymap.RenderFigure3(&b)
	valleymap.RenderFigure5(&b, opt)
	if !strings.Contains(b.String(), "Figure 5") {
		t.Error("renderers broken through facade")
	}
}

func TestFacadeBIM(t *testing.T) {
	m := valleymap.IdentityBIM(30)
	if !m.IsIdentity() {
		t.Error("identity BIM")
	}
	mp := valleymap.NewRMPMapper(valleymap.HynixGDDR5(), nil)
	if mp.Scheme() != valleymap.RMP {
		t.Error("RMP mapper scheme")
	}
}

// Example of the package's quickstart flow; also guards the doc.go code.
func ExampleAnalyzeApp() {
	spec, _ := valleymap.WorkloadByAbbr("MT")
	app := spec.Build(valleymap.ScaleTiny)
	prof := valleymap.AnalyzeApp(app, valleymap.AnalysisOptions{})
	valley := prof.HasValley([]int{8, 9, 10, 11, 12, 13}, 0.35, 0.6)
	fmt.Println("MT has an entropy valley over the channel/bank bits:", valley)
	// Output: MT has an entropy valley over the channel/bank bits: true
}

// TestPaperHeadlines asserts the paper's qualitative result set through
// the public API at tiny scale: scheme ordering, power trade-off, valley
// removal and non-valley neutrality.
func TestPaperHeadlines(t *testing.T) {
	opt := valleymap.ExperimentOptions{Scale: valleymap.ScaleTiny}
	suite := valleymap.ValleySuite(opt)

	speedup := func(s valleymap.Scheme) float64 {
		var sum float64
		series := suite.SpeedupSeries(s)
		for _, v := range series {
			sum += v
		}
		return sum / float64(len(series))
	}
	pm, rmp, pae, fae := speedup(valleymap.PM), speedup(valleymap.RMP), speedup(valleymap.PAE), speedup(valleymap.FAE)
	if !(pae > pm && pae > rmp && pae > 1.3) {
		t.Errorf("scheme ordering broken: PM %.2f RMP %.2f PAE %.2f", pm, rmp, pae)
	}
	if fae < pae*0.95 {
		t.Errorf("FAE (%.2f) should be at least on par with PAE (%.2f)", fae, pae)
	}
	if p, f := suite.NormalizedDRAMPower(valleymap.PAE), suite.NormalizedDRAMPower(valleymap.FAE); f <= p {
		t.Errorf("FAE DRAM power (%.2f) must exceed PAE's (%.2f)", f, p)
	}

	nv := valleymap.NonValleySuite(opt)
	if h := nv.HMeanSpeedup(valleymap.PAE); h < 0.9 || h > 1.25 {
		t.Errorf("non-valley PAE hmean %.2f not ~1.0", h)
	}
}
