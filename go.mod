module valleymap

go 1.22
